#include "coherence/l1_controller.hh"

#include "sim/logging.hh"
#include "sim/parallel_kernel.hh"

namespace tlr
{

const char *
abortReasonName(AbortReason r)
{
    switch (r) {
      case AbortReason::ConflictLost: return "conflict-lost";
      case AbortReason::SharedInvalidation: return "shared-invalidation";
      case AbortReason::ProbeLost: return "probe-lost";
      case AbortReason::PendingInvalidated: return "pending-invalidated";
      case AbortReason::ResourceVictimFull: return "victim-full";
      case AbortReason::ResourceWriteBuffer: return "write-buffer-full";
      case AbortReason::ResourceStructural: return "structural";
      case AbortReason::Unbufferable: return "unbufferable";
      case AbortReason::Preempted: return "preempted";
      case AbortReason::QuantumExpired: return "quantum-expired";
    }
    return "?";
}

L1Controller::L1Controller(EventQueue &eq, StatSet &stats, CpuId id,
                           L1Params params, Interconnect &net,
                           MemoryController &mem, SpecHooks &hooks)
    : eq_(eq), stats_(stats), id_(id), params_(params), net_(net),
      mem_(mem), hooks_(hooks), array_(params.sizeBytes, params.ways),
      victim_(params.victimEntries),
      hits_(stats.counter("l1_" + std::to_string(id), "hits")),
      misses_(stats.counter("l1_" + std::to_string(id), "misses")),
      upgrades_(stats.counter("l1_" + std::to_string(id), "upgrades")),
      defers_(stats.counter("l1_" + std::to_string(id), "defers")),
      relaxedDefers_(
          stats.counter("l1_" + std::to_string(id), "relaxedDefers")),
      probesSent_(stats.counter("l1_" + std::to_string(id), "probesSent")),
      writeBacksInit_(
          stats.counter("l1_" + std::to_string(id), "writeBacks")),
      victimInserts_(
          stats.counter("l1_" + std::to_string(id), "victimInserts"))
{
}

//
// ---- lookup / replacement ---------------------------------------------
//

CacheLine *
L1Controller::findLine(Addr line_addr)
{
    if (CacheLine *l = array_.find(line_addr))
        return l;
    if (CacheLine *v = victim_.find(line_addr)) {
        // Lazy promotion: move back only if a way is free, avoiding an
        // eviction cascade; otherwise operate on the line in place.
        CacheLine *slot = array_.allocateSlot(line_addr);
        if (slot && !isValidState(slot->state)) {
            *slot = *v;
            victim_.erase(line_addr);
            return slot;
        }
        return v;
    }
    return nullptr;
}

const CacheLine *
L1Controller::findLineConst(Addr line_addr) const
{
    return const_cast<L1Controller *>(this)->findLine(line_addr);
}

bool
L1Controller::holdsLineState(Addr line) const
{
    // Exact presence test for the broadcast snoop filter: snoop() can
    // only act when an MSHR is outstanding for the line or a valid
    // copy sits in the array or victim cache. Deliberately NOT
    // findLine()/findLineConst() — those perform lazy victim
    // promotion, and this predicate must be side-effect free (it runs
    // against live cache state from serialized ordering contexts).
    const Addr la = lineAlign(line);
    if (mshrs_.count(la))
        return true;
    if (static_cast<const CacheArray &>(array_).find(la))
        return true;
    return static_cast<const VictimCache &>(victim_).find(la) != nullptr;
}

bool
L1Controller::evictLine(CacheLine &line)
{
    if (line.inTransaction() && hooks_.specActive()) {
        CacheLine copy = line;
        if (victim_.insert(copy)) {
            ++victimInserts_;
            line.state = CohState::Invalid;
            line.clearAccess();
            return true;
        }
        // Victim cache full of transactional lines: the resource
        // guarantee of paper Section 3.3 is exceeded; fall back.
        hooks_.resourceAbort(line.addr, AbortReason::ResourceVictimFull);
        // Access bits are now cleared; fall through to a normal evict.
    }
    if (isDirtyState(line.state)) {
        memWriteBack(line.addr, line.data);
        netSubmit({ReqType::WriteBack, line.addr, id_, Timestamp{}, 0});
        ++writeBacksInit_;
    }
    clearLinkIf(line.addr);
    if (TLR_TRACE_ARMED(trace_))
        trace_->emit(eq_.now(), TraceComp::L1, TraceEvent::LineInval,
                     id_, line.addr);
    line.invalidate();
    return true;
}

CacheLine *
L1Controller::installLine(Addr line_addr, const LineData &data,
                          CohState state)
{
    CacheLine *slot = array_.allocateSlot(line_addr);
    if (!slot) {
        if (hooks_.specActive()) {
            hooks_.resourceAbort(line_addr,
                                 AbortReason::ResourceStructural);
            slot = array_.allocateSlot(line_addr);
        }
        if (!slot)
            panic("l1 %d: no allocatable way for line %#llx", id_,
                  static_cast<unsigned long long>(line_addr));
    }
    if (isValidState(slot->state))
        evictLine(*slot);
    slot->addr = line_addr;
    slot->state = state;
    slot->data = data;
    slot->clearAccess();
    slot->pinned = false;
    array_.touch(*slot, eq_.now());
    if (TLR_TRACE_ARMED(trace_))
        trace_->emit(eq_.now(), TraceComp::L1, TraceEvent::LineInstall,
                     id_, line_addr,
                     static_cast<std::uint64_t>(state));
    return slot;
}

//
// ---- engine-facing request path ---------------------------------------
//

void
L1Controller::respond(const CacheOp &op, std::uint64_t value)
{
    eq_.scheduleIn(params_.hitLatency,
                   [this, op, value] { hooks_.cacheOpDone(op, value); },
                   EventPrio::DataResponse);
}

bool
L1Controller::hasEarlierContender(Addr *line_out) const
{
    Timestamp mine = hooks_.currentTs();
    for (const auto &d : deferred_) {
        if (d.ts.valid && d.ts.earlierThan(mine)) {
            if (line_out)
                *line_out = d.line;
            return true;
        }
    }
    for (const auto &[la, m] : mshrs_) {
        if (!(m.op && m.op->spec) && !(m.queuedOp && m.queuedOp->spec))
            continue;
        for (const Waiter &w : m.waiters) {
            if (w.deferred && w.ts.valid && w.ts.earlierThan(mine)) {
                if (line_out)
                    *line_out = la;
                return true;
            }
        }
    }
    for (const auto &[la, hint] : probeHints_) {
        if (!hint.valid || !hint.earlierThan(mine))
            continue;
        const CacheLine *l = findLineConst(la);
        bool retained =
            l && isOwnerState(l->state) && l->inTransaction();
        if (!retained) {
            auto mit = mshrs_.find(la);
            retained = mit != mshrs_.end() &&
                       ((mit->second.op && mit->second.op->spec) ||
                        (mit->second.queuedOp &&
                         mit->second.queuedOp->spec));
        }
        if (retained) {
            if (line_out)
                *line_out = la;
            return true;
        }
    }
    return false;
}

void
L1Controller::forwardContenderProbes()
{
    // Push the priority of every held-off higher-priority contender
    // toward the data its chain is rooted at, so upstream holders
    // learn about it (paper Section 3.1.1).
    for (auto &[line2, m2] : mshrs_) {
        if (!(m2.op && m2.op->spec) &&
            !(m2.queuedOp && m2.queuedOp->spec))
            continue;
        for (const Waiter &w : m2.waiters) {
            if (!(w.deferred && w.ts.valid &&
                  w.ts.earlierThan(hooks_.currentTs())))
                continue;
            if (m2.markerFrom != invalidCpu) {
                netSendProbe(m2.markerFrom, {line2, w.ts, id_});
                ++probesSent_;
            } else if (!m2.pendingProbe ||
                       w.ts.earlierThan(*m2.pendingProbe)) {
                m2.pendingProbe = w.ts;
            }
            m2.loseOnArrival = true;
        }
    }
}

bool
L1Controller::detectTwoCycle(Addr *line_out) const
{
    // A locally certain deadlock: an earlier-timestamp contender C is
    // queued behind us (so C waits on us) while our upstream neighbor
    // for some outstanding transactional miss is C itself (so we wait
    // on C). Neither can commit; no timer needed.
    Timestamp mine = hooks_.currentTs();
    auto waitsOnUs = [&](CpuId c) {
        for (const auto &d : deferred_)
            if (d.cpu == c && d.ts.valid && d.ts.earlierThan(mine))
                return true;
        for (const auto &[la2, m2] : mshrs_) {
            (void)la2;
            if (!(m2.op && m2.op->spec) &&
                !(m2.queuedOp && m2.queuedOp->spec))
                continue;
            for (const Waiter &w : m2.waiters)
                if (w.cpu == c && w.deferred && w.ts.valid &&
                    w.ts.earlierThan(mine))
                    return true;
        }
        return false;
    };
    for (const auto &[la, m] : mshrs_) {
        if (!(m.op && m.op->spec) && !(m.queuedOp && m.queuedOp->spec))
            continue;
        if (m.markerFrom != invalidCpu && waitsOnUs(m.markerFrom)) {
            if (line_out)
                *line_out = la;
            return true;
        }
    }
    return false;
}

void
L1Controller::maybeArmYield()
{
    if (!hooks_.tlrActive() || hooks_.strictTimestamps())
        return;
    Addr cycleLine = 0;
    if (hooks_.specActive() && outstandingSpecMisses() > 0 &&
        detectTwoCycle(&cycleLine)) {
        if (TLR_TRACE_ARMED(trace_))
            trace_->emit(eq_.now(), TraceComp::L1, TraceEvent::CohYield,
                         id_, cycleLine);
        forwardContenderProbes();
        hooks_.conflictAbort(cycleLine, AbortReason::ConflictLost);
        return;
    }
    if (yieldArmed_)
        return;
    if (outstandingSpecMisses() == 0)
        return; // not waiting for anything: we will commit and service
    if (!hasEarlierContender())
        return;
    yieldArmed_ = true;
    const std::uint64_t gen = ++yieldGen_;
    eq_.scheduleIn(params_.yieldTimeout,
                   [this, gen] { yieldFire(gen); });
}

void
L1Controller::yieldFire(std::uint64_t gen)
{
    if (gen != yieldGen_ || !yieldArmed_)
        return;
    yieldArmed_ = false;
    if (!hooks_.specActive() || !hooks_.tlrActive())
        return;
    if (outstandingSpecMisses() == 0)
        return; // the wait resolved: commit is imminent
    Addr line = 0;
    if (!hasEarlierContender(&line)) {
        maybeArmYield(); // still waiting; re-arm if one appears
        return;
    }
    // We have both waited for yieldTimeout and held off a
    // higher-priority contender the whole time: a cyclic wait is the
    // only schedule that cannot drain, so enforce timestamp order.
    if (TLR_TRACE_ARMED(trace_))
        trace_->emit(eq_.now(), TraceComp::L1, TraceEvent::CohYield, id_,
                     line);
    forwardContenderProbes();
    hooks_.conflictAbort(line, AbortReason::ConflictLost);
}

bool
L1Controller::yieldBeforeWaiting(Addr la, bool spec)
{
    if (!spec || !hooks_.tlrActive())
        return false;
    if (hooks_.strictTimestamps()) {
        // Strict mode: enforce timestamp order the moment a new wait
        // would begin while a higher-priority contender is held off
        // (paper Section 3.2).
        if (hasEarlierContender()) {
            if (TLR_TRACE_ARMED(trace_))
                trace_->emit(eq_.now(), TraceComp::L1,
                             TraceEvent::CohYield, id_, la);
            forwardContenderProbes();
            hooks_.conflictAbort(la, AbortReason::ConflictLost);
            return true;
        }
        return false;
    }
    // Relaxed mode: allow the wait; the deadlock-recovery timer
    // enforces timestamp order only if the wait persists.
    (void)la;
    return false;
}

void
L1Controller::missIssue(const CacheOp &op, ReqType type)
{
    Addr la = lineAlign(op.addr);
    if (yieldBeforeWaiting(la, op.spec))
        return;
    if (TLR_TRACE_ARMED(trace_))
        trace_->emit(eq_.now(), TraceComp::L1, TraceEvent::CohMiss, id_,
                     la, static_cast<std::uint64_t>(type),
                     op.spec ? 1 : 0);
    ++misses_;
    if (type == ReqType::Upgrade)
        ++upgrades_;
    Mshr m;
    m.type = type;
    m.line = la;
    m.spec = op.spec;
    m.op = op;
    mshrs_.emplace(la, std::move(m));
    Timestamp ts = op.spec ? hooks_.currentTs() : Timestamp{};
    netSubmit({type, la, id_, ts, 0});
    if (op.spec)
        maybeArmYield();
}

void
L1Controller::access(const CacheOp &op)
{
    Addr la = lineAlign(op.addr);
    auto mit = mshrs_.find(la);
    if (mit != mshrs_.end()) {
        // A restart re-issued an access to a line whose miss (from the
        // squashed attempt) is still in flight: complete it afterwards.
        // Queueing is a wait, so the same yield rules apply.
        if (yieldBeforeWaiting(la, op.spec))
            return;
        if (mit->second.queuedOp)
            panic("l1 %d: two queued ops for line %#llx", id_,
                  static_cast<unsigned long long>(la));
        mit->second.queuedOp = op;
        return;
    }

    CacheLine *l = findLine(la);
    unsigned wi = wordIndex(op.addr);

    switch (op.kind) {
      case CacheOp::Kind::LoadShared:
      case CacheOp::Kind::LoadExclusive:
        if (l) {
            ++hits_;
            array_.touch(*l, eq_.now());
            if (op.spec)
                l->accessRead = true;
            if (op.isLl) {
                linkValid_ = true;
                linkLine_ = la;
                linkAddr_ = op.addr;
            }
            if (op.spec && TLR_TRACE_ARMED(trace_))
                trace_->emit(eq_.now(), TraceComp::L1,
                             TraceEvent::TxnRead, id_, op.addr,
                             l->data[wi]);
            respond(op, l->data[wi]);
            return;
        }
        missIssue(op, op.kind == CacheOp::Kind::LoadExclusive
                          ? ReqType::GetX
                          : ReqType::GetS);
        return;

      case CacheOp::Kind::Store:
        if (l && isWritableState(l->state)) {
            ++hits_;
            array_.touch(*l, eq_.now());
            l->data[wi] = op.data;
            l->state = CohState::Modified;
            clearLinkIf(la);
            if (!op.spec && TLR_TRACE_ARMED(trace_))
                trace_->emit(eq_.now(), TraceComp::L1,
                             TraceEvent::MemWrite, id_, op.addr,
                             op.data);
            respond(op, 0);
            return;
        }
        missIssue(op, l ? ReqType::Upgrade : ReqType::GetX);
        return;

      case CacheOp::Kind::EnsureExclusive:
        if (l && isWritableState(l->state)) {
            ++hits_;
            array_.touch(*l, eq_.now());
            l->accessWrite = true;
            // The current word value is returned so speculative
            // atomics can read-modify-write through the write buffer.
            if (op.spec && TLR_TRACE_ARMED(trace_))
                trace_->emit(eq_.now(), TraceComp::L1,
                             TraceEvent::TxnRead, id_, op.addr,
                             l->data[wi]);
            respond(op, l->data[wi]);
            return;
        }
        missIssue(op, l ? ReqType::Upgrade : ReqType::GetX);
        return;

      case CacheOp::Kind::AtomicSwap:
      case CacheOp::Kind::AtomicCas:
      case CacheOp::Kind::AtomicAdd:
        if (l && isWritableState(l->state)) {
            ++hits_;
            array_.touch(*l, eq_.now());
            std::uint64_t old = l->data[wi];
            if (op.kind == CacheOp::Kind::AtomicAdd) {
                l->data[wi] = old + op.data;
                l->state = CohState::Modified;
                clearLinkIf(la);
            } else if (op.kind == CacheOp::Kind::AtomicSwap ||
                       old == op.expected) {
                l->data[wi] = op.data;
                l->state = CohState::Modified;
                clearLinkIf(la);
            }
            if (!op.spec && l->data[wi] != old &&
                TLR_TRACE_ARMED(trace_))
                trace_->emit(eq_.now(), TraceComp::L1,
                             TraceEvent::MemWrite, id_, op.addr,
                             l->data[wi]);
            respond(op, old);
            return;
        }
        missIssue(op, l ? ReqType::Upgrade : ReqType::GetX);
        return;

      case CacheOp::Kind::StoreCond:
        if (!linkValid(op.addr)) {
            respond(op, 0);
            return;
        }
        if (l && isWritableState(l->state)) {
            ++hits_;
            array_.touch(*l, eq_.now());
            l->data[wi] = op.data;
            l->state = CohState::Modified;
            linkValid_ = false;
            if (!op.spec && TLR_TRACE_ARMED(trace_))
                trace_->emit(eq_.now(), TraceComp::L1,
                             TraceEvent::MemWrite, id_, op.addr,
                             op.data);
            respond(op, 1);
            return;
        }
        missIssue(op, l ? ReqType::Upgrade : ReqType::GetX);
        return;
    }
}

//
// ---- snooping ----------------------------------------------------------
//

bool
L1Controller::conflicts(const BusRequest &req, bool read_set,
                        bool write_set) const
{
    if (req.type == ReqType::GetS)
        return write_set;
    return read_set || write_set; // GetX / Upgrade
}

bool
L1Controller::winsConflict(const Timestamp &incoming) const
{
    if (!hooks_.tlrActive())
        return false; // SLE alone cannot defer: it always restarts
    if (!incoming.valid)
        return hooks_.deferUntimestamped();
    // Win unless the incoming timestamp is strictly earlier. Equality
    // means the request is our own (timestamps are globally unique):
    // a probe carrying our priority must never restart us.
    return !incoming.earlierThan(hooks_.currentTs());
}

std::uint64_t
L1Controller::deferredDepth() const
{
    std::uint64_t n = deferred_.size();
    for (const auto &[la, m] : mshrs_) {
        (void)la;
        for (const Waiter &w : m.waiters)
            if (w.deferred)
                ++n;
    }
    return n;
}

bool
L1Controller::deferredExclusive(Addr line_addr) const
{
    for (const auto &d : deferred_)
        if (d.line == line_addr && d.type != ReqType::GetS)
            return true;
    return false;
}

void
L1Controller::handleChainSnoop(Mshr &mshr, const BusRequest &req,
                               SnoopReply &reply)
{
    (void)reply;
    Waiter w{req.requester, req.type, req.ts, false};
    // Tell the new pending owner who its upstream neighbor is so it
    // can forward probes toward the data (paper Section 3.1.1).
    netSendMarker(req.requester, {mshr.line, id_});

    // Propagate the request's priority toward the data holder at the
    // head of the chain ("conflicting requests must propagate along
    // the coherence chain towards the root"). The holder compares
    // timestamps itself: a winner ignores the probe, a loser releases
    // the block. We cannot make that decision here — the holder may
    // be a multi-block transaction that has to yield even when we
    // would not.
    if (req.ts.valid) {
        if (mshr.markerFrom != invalidCpu) {
            netSendProbe(mshr.markerFrom, {mshr.line, req.ts, id_});
            ++probesSent_;
        } else if (!mshr.pendingProbe ||
                   req.ts.earlierThan(*mshr.pendingProbe)) {
            mshr.pendingProbe = req.ts;
        }
    }

    bool writeIntent =
        mshr.op && (mshr.op->kind == CacheOp::Kind::EnsureExclusive ||
                    mshr.op->kind == CacheOp::Kind::Store ||
                    mshr.op->kind == CacheOp::Kind::StoreCond ||
                    mshr.op->kind == CacheOp::Kind::AtomicSwap ||
                    mshr.op->kind == CacheOp::Kind::AtomicCas);
    bool readIntent = mshr.op && !writeIntent;

    if (mshr.spec && hooks_.specActive() &&
        conflicts(req, readIntent, writeIntent)) {
        hooks_.noteConflictTs(req.ts);
        bool win = winsConflict(req.ts);
        bool relaxed = false;
        if (!win && hooks_.tlrActive() && !hooks_.strictTimestamps() &&
            outstandingSpecMisses() == 1 && deferred_.empty()) {
            // Paper Section 3.2: our transaction is involved with a
            // single contended block (this one), so we are not a
            // deadlock risk ourselves and may stay queued; the probe
            // sent above carries the contender's priority to the
            // data holder, which yields if it must.
            win = true;
            relaxed = true;
            ++relaxedDefers_;
        }
        if (!win && !hooks_.strictTimestamps() && req.ts.valid) {
            // Higher-priority contender behind us in the chain. The
            // probe above already carries its priority upstream; keep
            // it queued and let the deadlock-recovery timer enforce
            // timestamp order only if this wait persists — in an
            // order-consistent queue we finish first and service it.
            win = true;
            relaxed = true;
        }
        if (win) {
            // The requester waits until we commit.
            w.deferred = true;
            ++defers_;
            if (TLR_TRACE_ARMED(trace_)) {
                trace_->emit(eq_.now(), TraceComp::L1,
                             relaxed ? TraceEvent::CohRelaxedDefer
                                     : TraceEvent::CohDefer,
                             id_, mshr.line, req.requester,
                             static_cast<std::uint64_t>(req.type),
                             req.ts.clock, packTsMeta(req.ts));
                // +1: w joins mshr.waiters just below, on either path.
                trace_->emit(eq_.now(), TraceComp::L1,
                             TraceEvent::CohDeferDepth, id_, 0,
                             deferredDepth() + 1);
            }
            if (req.ts.valid &&
                req.ts.earlierThan(hooks_.currentTs())) {
                mshr.waiters.push_back(w);
                if (req.type != ReqType::GetS)
                    mshr.ownershipPassed = true;
                maybeArmYield();
                return;
            }
        } else {
            // Strict mode / un-deferrable: step aside immediately.
            if (TLR_TRACE_ARMED(trace_) && hooks_.tlrActive()) {
                const Timestamp own = hooks_.currentTs();
                trace_->emit(eq_.now(), TraceComp::L1,
                             TraceEvent::CohLose, id_, mshr.line,
                             req.ts.clock, packTsMeta(req.ts),
                             own.clock, packTsMeta(own));
            }
            mshr.loseOnArrival = true;
            hooks_.conflictAbort(mshr.line, AbortReason::ConflictLost);
        }
    }

    mshr.waiters.push_back(w);
    if (req.type != ReqType::GetS)
        mshr.ownershipPassed = true;
}

void
L1Controller::handleOwnerSnoop(CacheLine &line, const BusRequest &req,
                               SnoopReply &reply)
{
    Addr la = req.line;
    if (hooks_.specActive() &&
        conflicts(req, line.accessRead, line.accessWrite)) {
        hooks_.noteConflictTs(req.ts);
        // Only an exclusively owned block (M/E) is retainable (paper
        // Fig. 3). An Owned copy implies we may ourselves need an
        // upgrade for it, so holding requests hostage from O could
        // invert the protocol order: lose the conflict instead.
        bool win = isWritableState(line.state) && winsConflict(req.ts);
        bool relaxed = false;
        if (!win && isWritableState(line.state) && hooks_.tlrActive() &&
            !hooks_.strictTimestamps() && req.ts.valid) {
            // Relaxed mode: retain the block and queue even a
            // higher-priority request (paper Section 3.2 generalized).
            // If we are not waiting for anything we commit first and
            // service it; if we are, the deadlock-recovery timer
            // enforces timestamp order should the wait persist.
            win = true;
            relaxed = true;
            ++relaxedDefers_;
        }
        if (win) {
            if (TLR_TRACE_ARMED(trace_))
                trace_->emit(eq_.now(), TraceComp::L1,
                             relaxed ? TraceEvent::CohRelaxedDefer
                                     : TraceEvent::CohDefer,
                             id_, la, req.requester,
                             static_cast<std::uint64_t>(req.type),
                             req.ts.clock, packTsMeta(req.ts));
            ++defers_;
            deferred_.push_back({la, req.requester, req.type, req.ts});
            line.pinned = true;
            if (TLR_TRACE_ARMED(trace_))
                trace_->emit(eq_.now(), TraceComp::L1,
                             TraceEvent::CohDeferDepth, id_, 0,
                             deferredDepth());
            netSendMarker(req.requester, {la, id_});
            maybeArmYield();
            return; // owner=true already: requester waits on us
        }
        if (TLR_TRACE_ARMED(trace_) && hooks_.tlrActive() &&
            isWritableState(line.state)) {
            const Timestamp own = hooks_.currentTs();
            trace_->emit(eq_.now(), TraceComp::L1, TraceEvent::CohLose,
                         id_, la, req.ts.clock, packTsMeta(req.ts),
                         own.clock, packTsMeta(own));
        }
        hooks_.conflictAbort(la, isWritableState(line.state)
                                     ? AbortReason::ConflictLost
                                     : AbortReason::SharedInvalidation);
        // Access bits are cleared now; service the request normally.
        // Note: `line` is still valid — aborting never invalidates it.
    }

    DataMsg msg;
    msg.line = la;
    msg.data = line.data;
    msg.from = id_;
    if (req.type == ReqType::GetS) {
        msg.grant = Grant::SharedData;
        if (line.state == CohState::Modified)
            line.state = CohState::Owned;
        else if (line.state == CohState::Exclusive)
            line.state = CohState::Shared;
        reply.sharer = true;
        if (TLR_TRACE_ARMED(trace_))
            trace_->emit(eq_.now(), TraceComp::L1,
                         TraceEvent::LineDowngrade, id_, la,
                         static_cast<std::uint64_t>(line.state));
    } else {
        msg.grant = Grant::ModifiedData;
        clearLinkIf(la);
        if (TLR_TRACE_ARMED(trace_))
            trace_->emit(eq_.now(), TraceComp::L1, TraceEvent::LineInval,
                         id_, la);
        line.invalidate();
        victim_.erase(la);
    }
    netSendData(req.requester, msg);
}

SnoopReply
L1Controller::snoop(const BusRequest &req)
{
    SnoopReply reply;
    Addr la = req.line;

    auto mit = mshrs_.find(la);
    if (mit != mshrs_.end() && mit->second.ordered) {
        Mshr &m = mit->second;
        if (m.isExclusive() && !m.ownershipPassed) {
            // We are the protocol owner even though data has not
            // arrived: record the request in the ownership chain.
            reply.owner = true;
            handleChainSnoop(m, req, reply);
            return reply;
        }
        if (!m.isExclusive()) {
            if (req.type == ReqType::GetS) {
                // Another reader: we will hold a Shared copy, so it
                // must not be granted (nor keep) Exclusive.
                reply.sharer = true;
                m.downgradeToShared = true;
                return reply;
            }
            // Pending read overtaken by a write: the arriving data may
            // be used once but must not be cached.
            {
                m.invalidateOnArrival = true;
                if (m.spec && m.op && hooks_.specActive()) {
                    hooks_.noteConflictTs(req.ts);
                    hooks_.conflictAbort(la,
                                         AbortReason::PendingInvalidated);
                }
            }
            return reply;
        }
        return reply; // exclusive MSHR, ownership already passed on
    }

    CacheLine *l = findLine(la);
    if (!l)
        return reply;

    if (isOwnerState(l->state)) {
        if (deferredExclusive(la)) {
            // Ownership was already promised to a deferred GetX; new
            // requests are recorded at that pending owner instead.
            return reply;
        }
        if (req.type == ReqType::Upgrade) {
            // A valid upgrade implies the requester holds Shared, so
            // no Modified/Exclusive copy can exist anywhere.
            if (isWritableState(l->state))
                panic("l1 %d: valid upgrade snooped on %s line %#llx",
                      id_, cohStateName(l->state),
                      static_cast<unsigned long long>(la));
            // Owned copy: same data as the upgrader's Shared copy; no
            // data response exists to withhold, so an upgrade can
            // never be deferred (paper Section 3.1.2).
            if (l->inTransaction() && hooks_.specActive()) {
                hooks_.noteConflictTs(req.ts);
                hooks_.conflictAbort(la, AbortReason::SharedInvalidation);
            }
            clearLinkIf(la);
            if (TLR_TRACE_ARMED(trace_))
                trace_->emit(eq_.now(), TraceComp::L1,
                             TraceEvent::LineInval, id_, la);
            l->invalidate();
            victim_.erase(la);
            return reply;
        }
        reply.owner = true;
        handleOwnerSnoop(*l, req, reply);
        return reply;
    }

    if (l->state == CohState::Shared) {
        if (req.type == ReqType::GetS) {
            reply.sharer = true;
            return reply;
        }
        reply.sharer = true;
        if (l->inTransaction() && hooks_.specActive()) {
            hooks_.noteConflictTs(req.ts);
            hooks_.conflictAbort(la, AbortReason::SharedInvalidation);
        }
        clearLinkIf(la);
        if (TLR_TRACE_ARMED(trace_))
            trace_->emit(eq_.now(), TraceComp::L1, TraceEvent::LineInval,
                         id_, la);
        l->invalidate();
        victim_.erase(la);
    }
    return reply;
}

void
L1Controller::ownRequestOrdered(const BusRequest &req, bool any_owner,
                                bool any_sharer)
{
    (void)any_owner;
    (void)any_sharer;
    auto it = mshrs_.find(req.line);
    if (it == mshrs_.end())
        panic("l1 %d: ordered request without MSHR line=%#llx", id_,
              static_cast<unsigned long long>(req.line));
    Mshr &m = it->second;

    if (req.type == ReqType::Upgrade) {
        CacheLine *l = findLine(req.line);
        if (l && (l->state == CohState::Shared ||
                  l->state == CohState::Owned)) {
            // Still valid: upgrade completes instantly, no data needed.
            // (An Owned copy has the authoritative data already; the
            // snoop invalidated every other sharer.)
            l->state = CohState::Modified;
            if (TLR_TRACE_ARMED(trace_))
                trace_->emit(eq_.now(), TraceComp::L1,
                             TraceEvent::LineUpgrade, id_, req.line);
            Mshr done = std::move(m);
            mshrs_.erase(it);
            finishOp(done, l, l->data);
            if (done.op && done.op->spec)
                hooks_.specMshrDrained(req.line);
            if (done.queuedOp) {
                CacheOp q = *done.queuedOp;
                eq_.scheduleIn(1, [this, q] { access(q); });
            }
            return;
        }
        // Invalidated while the upgrade was in flight: reissue as GetX.
        // A spec-originated miss keeps its transactional identity even
        // if the attempt restarted meanwhile (the instance timestamp
        // is retained), so the reissue carries the current timestamp.
        m.type = ReqType::GetX;
        m.ordered = false;
        Timestamp ts = m.spec ? hooks_.currentTs() : Timestamp{};
        netSubmit({ReqType::GetX, req.line, id_, ts, 0});
        return;
    }

    m.ordered = true;
}

void
L1Controller::finishOp(Mshr &mshr, CacheLine *line, const LineData &data)
{
    if (!mshr.op)
        return; // dropped by an abort; the fill still installed the line
    const CacheOp &op = *mshr.op;
    unsigned wi = wordIndex(op.addr);

    switch (op.kind) {
      case CacheOp::Kind::LoadShared:
      case CacheOp::Kind::LoadExclusive: {
        std::uint64_t v = line ? line->data[wi] : data[wi];
        if (op.spec && line)
            line->accessRead = true;
        if (op.isLl && line) {
            linkValid_ = true;
            linkLine_ = lineAlign(op.addr);
            linkAddr_ = op.addr;
        }
        if (op.spec && TLR_TRACE_ARMED(trace_))
            trace_->emit(eq_.now(), TraceComp::L1, TraceEvent::TxnRead,
                         id_, op.addr, v);
        respond(op, v);
        return;
      }
      case CacheOp::Kind::Store:
        if (!line || !isWritableState(line->state))
            panic("l1 %d: store fill without write permission", id_);
        line->data[wi] = op.data;
        line->state = CohState::Modified;
        clearLinkIf(lineAlign(op.addr));
        if (!op.spec && TLR_TRACE_ARMED(trace_))
            trace_->emit(eq_.now(), TraceComp::L1, TraceEvent::MemWrite,
                         id_, op.addr, op.data);
        respond(op, 0);
        return;
      case CacheOp::Kind::EnsureExclusive:
        if (!line || !isWritableState(line->state))
            panic("l1 %d: ensureX fill without write permission", id_);
        line->accessWrite = true;
        if (op.spec && TLR_TRACE_ARMED(trace_))
            trace_->emit(eq_.now(), TraceComp::L1, TraceEvent::TxnRead,
                         id_, op.addr, line->data[wi]);
        respond(op, line->data[wi]);
        return;
      case CacheOp::Kind::AtomicSwap:
      case CacheOp::Kind::AtomicCas:
      case CacheOp::Kind::AtomicAdd: {
        if (!line || !isWritableState(line->state))
            panic("l1 %d: atomic fill without write permission", id_);
        std::uint64_t old = line->data[wi];
        if (op.kind == CacheOp::Kind::AtomicAdd) {
            line->data[wi] = old + op.data;
            line->state = CohState::Modified;
            clearLinkIf(lineAlign(op.addr));
        } else if (op.kind == CacheOp::Kind::AtomicSwap ||
                   old == op.expected) {
            line->data[wi] = op.data;
            line->state = CohState::Modified;
            clearLinkIf(lineAlign(op.addr));
        }
        if (!op.spec && line->data[wi] != old && TLR_TRACE_ARMED(trace_))
            trace_->emit(eq_.now(), TraceComp::L1, TraceEvent::MemWrite,
                         id_, op.addr, line->data[wi]);
        respond(op, old);
        return;
      }
      case CacheOp::Kind::StoreCond:
        if (line && isWritableState(line->state) && linkValid(op.addr)) {
            line->data[wi] = op.data;
            line->state = CohState::Modified;
            linkValid_ = false;
            if (!op.spec && TLR_TRACE_ARMED(trace_))
                trace_->emit(eq_.now(), TraceComp::L1,
                             TraceEvent::MemWrite, id_, op.addr,
                             op.data);
            respond(op, 1);
        } else {
            respond(op, 0);
        }
        return;
    }
}

void
L1Controller::dataResponse(const DataMsg &msg)
{
    auto it = mshrs_.find(msg.line);
    if (it == mshrs_.end())
        panic("l1 %d: data without MSHR line=%#llx", id_,
              static_cast<unsigned long long>(msg.line));
    Mshr m = std::move(it->second);
    mshrs_.erase(it);

    CacheLine *l = nullptr;
    if (msg.grant == Grant::DontInstall || m.invalidateOnArrival) {
        // Use the data for the pending op only (ordered before the
        // overtaking write), do not cache it.
        finishOp(m, nullptr, msg.data);
    } else {
        CohState st = CohState::Shared;
        if (msg.grant == Grant::ExclusiveData && !m.downgradeToShared)
            st = CohState::Exclusive;
        else if (msg.grant == Grant::ModifiedData)
            st = CohState::Modified;
        l = installLine(msg.line, msg.data, st);
        if (!m.loseOnArrival)
            finishOp(m, l, msg.data);
    }

    if (m.op && m.op->spec)
        hooks_.specMshrDrained(msg.line);

    // Service or defer the requests recorded while we were the pending
    // owner. `m.loseOnArrival` or a completed abort forces servicing.
    // The disposition is all-or-nothing: servicing an early GetS while
    // holding a later GetX hostage would downgrade us to Owned, which
    // is not a retainable state — the per-line FIFO order is preserved
    // either way because the deferred queue drains in order.
    bool keepDeferring = hooks_.specActive() && m.spec && m.op &&
                         !m.loseOnArrival && l &&
                         isWritableState(l->state) &&
                         (l->accessRead || l->accessWrite);
    for (const Waiter &w : m.waiters) {
        if (keepDeferring) {
            deferred_.push_back({msg.line, w.cpu, w.type, w.ts});
            l->pinned = true;
        } else {
            serviceWaiter(w, msg.line);
        }
    }
    if (!m.waiters.empty() && TLR_TRACE_ARMED(trace_))
        trace_->emit(eq_.now(), TraceComp::L1, TraceEvent::CohDeferDepth,
                     id_, 0, deferredDepth());

    if (m.queuedOp) {
        CacheOp q = *m.queuedOp;
        eq_.scheduleIn(1, [this, q] { access(q); });
    }
    if (hooks_.specActive())
        maybeArmYield();
}

void
L1Controller::serviceWaiter(const Waiter &w, Addr line_addr,
                            ServiceCause cause)
{
    CacheLine *l = findLine(line_addr);
    if (!l || !isOwnerState(l->state))
        panic("l1 %d: servicing waiter for line %#llx without owned data",
              id_, static_cast<unsigned long long>(line_addr));
    if (TLR_TRACE_ARMED(trace_))
        trace_->emit(eq_.now(), TraceComp::L1, TraceEvent::CohService,
                     id_, line_addr,
                     static_cast<std::uint64_t>(w.cpu),
                     static_cast<std::uint64_t>(cause));
    DataMsg msg;
    msg.line = line_addr;
    msg.data = l->data;
    msg.from = id_;
    if (w.type == ReqType::GetS) {
        msg.grant = Grant::SharedData;
        if (l->state == CohState::Modified)
            l->state = CohState::Owned;
        else if (l->state == CohState::Exclusive)
            l->state = CohState::Shared;
        if (TLR_TRACE_ARMED(trace_))
            trace_->emit(eq_.now(), TraceComp::L1,
                         TraceEvent::LineDowngrade, id_, line_addr,
                         static_cast<std::uint64_t>(l->state));
    } else {
        msg.grant = Grant::ModifiedData;
        clearLinkIf(line_addr);
        if (TLR_TRACE_ARMED(trace_))
            trace_->emit(eq_.now(), TraceComp::L1, TraceEvent::LineInval,
                         id_, line_addr);
        l->invalidate();
        victim_.erase(line_addr);
    }
    netSendData(w.cpu, msg);
}

//
// ---- TLR control messages ----------------------------------------------
//

void
L1Controller::marker(const MarkerMsg &msg)
{
    auto it = mshrs_.find(msg.line);
    if (it == mshrs_.end())
        return; // the miss already completed; marker is stale
    Mshr &m = it->second;
    m.markerFrom = msg.from;
    if (m.pendingProbe) {
        netSendProbe(m.markerFrom, {msg.line, *m.pendingProbe, id_});
        ++probesSent_;
        m.pendingProbe.reset();
    }
    // Knowing the upstream neighbor may complete a two-party cycle
    // (we hold its higher-priority request while waiting on it).
    if (hooks_.specActive())
        maybeArmYield();
}

void
L1Controller::probe(const ProbeMsg &msg)
{
    Addr la = msg.line;

    // Case 1: we hold the line inside our transaction — either
    // already deferring requests for it, or the probe raced ahead of
    // the conflicting request itself.
    bool holdsDeferred = false;
    for (const auto &d : deferred_)
        if (d.line == la)
            holdsDeferred = true;
    if (CacheLine *l = findLine(la))
        holdsDeferred |= isOwnerState(l->state) && l->inTransaction();
    if (holdsDeferred && hooks_.specActive() && hooks_.tlrActive()) {
        hooks_.noteConflictTs(msg.ts);
        if (!winsConflict(msg.ts)) {
            if (!hooks_.strictTimestamps()) {
                // Remember the contender's priority: if our wait (or
                // a future one) persists, the recovery timer enforces
                // timestamp order; if we commit first, servicing the
                // deferred queue satisfies the contender anyway.
                auto it = probeHints_.find(la);
                if (it == probeHints_.end() ||
                    msg.ts.earlierThan(it->second))
                    probeHints_[la] = msg.ts;
                maybeArmYield();
                return;
            }
            if (TLR_TRACE_ARMED(trace_)) {
                const Timestamp own = hooks_.currentTs();
                trace_->emit(eq_.now(), TraceComp::L1,
                             TraceEvent::CohLose, id_, la, msg.ts.clock,
                             packTsMeta(msg.ts), own.clock,
                             packTsMeta(own));
            }
            hooks_.conflictAbort(la, AbortReason::ProbeLost);
        }
        return;
    }

    // Case 2: pending owner in the chain: forward upstream.
    auto it = mshrs_.find(la);
    if (it != mshrs_.end() && it->second.ordered &&
        it->second.isExclusive()) {
        Mshr &m = it->second;
        if (m.markerFrom != invalidCpu) {
            netSendProbe(m.markerFrom, {la, msg.ts, id_});
            ++probesSent_;
        } else if (!m.pendingProbe || msg.ts.earlierThan(*m.pendingProbe)) {
            m.pendingProbe = msg.ts;
        }
        if (m.spec && m.op && hooks_.specActive() &&
            !winsConflict(msg.ts)) {
            hooks_.noteConflictTs(msg.ts);
            if (hooks_.tlrActive() && !hooks_.strictTimestamps()) {
                // Remember the contender's priority for the recovery
                // timer; it was already forwarded up the chain above.
                auto it = probeHints_.find(la);
                if (it == probeHints_.end() ||
                    msg.ts.earlierThan(it->second))
                    probeHints_[la] = msg.ts;
                maybeArmYield();
                return;
            }
            if (TLR_TRACE_ARMED(trace_)) {
                const Timestamp own = hooks_.currentTs();
                trace_->emit(eq_.now(), TraceComp::L1,
                             TraceEvent::CohLose, id_, la, msg.ts.clock,
                             packTsMeta(msg.ts), own.clock,
                             packTsMeta(own));
            }
            m.loseOnArrival = true;
            hooks_.conflictAbort(la, AbortReason::ProbeLost);
        }
        return;
    }
    // Otherwise stale: the chain already drained.
}

//
// ---- transaction boundary operations -----------------------------------
//

void
L1Controller::commitTransaction(const WriteBuffer &wb)
{
    for (const auto &[la, entry] : wb.entries()) {
        CacheLine *l = findLine(la);
        if (!l || !isWritableState(l->state))
            panic("l1 %d: commit without writable line %#llx", id_,
                  static_cast<unsigned long long>(la));
        for (unsigned w = 0; w < wordsPerLine; ++w)
            if (entry.mask & (1u << w)) {
                l->data[w] = entry.words[w];
                if (TLR_TRACE_ARMED(trace_))
                    trace_->emit(eq_.now(), TraceComp::L1,
                                 TraceEvent::TxnWrite, id_, la + 8 * w,
                                 entry.words[w]);
            }
        l->state = CohState::Modified;
    }
    array_.forEachValid([](CacheLine &l) { l.clearAccess(); });
    for (auto &v : victim_.entries())
        v.clearAccess();
    serviceDeferredQueue(/*at_commit=*/true);
}

void
L1Controller::abortTransaction()
{
    for (auto &[la, m] : mshrs_) {
        (void)la;
        if (m.op && m.op->spec)
            m.op.reset();
        if (m.queuedOp && m.queuedOp->spec)
            m.queuedOp.reset();
    }
    array_.forEachValid([](CacheLine &l) { l.clearAccess(); });
    for (auto &v : victim_.entries())
        v.clearAccess();
    serviceDeferredQueue(/*at_commit=*/false);
}

void
L1Controller::serviceDeferredQueue(bool at_commit)
{
    if (!deferred_.empty() && TLR_TRACE_ARMED(trace_))
        trace_->emit(eq_.now(), TraceComp::L1, TraceEvent::CohDeferDrain,
                     id_, 0, deferred_.size(), at_commit ? 1 : 0);
    const bool drained = !deferred_.empty();
    while (!deferred_.empty()) {
        DeferredReq d = deferred_.front();
        deferred_.pop_front();
        serviceWaiter({d.cpu, d.type, d.ts, false}, d.line,
                      at_commit ? ServiceCause::CommitDrain
                                : ServiceCause::AbortDrain);
    }
    if (drained && TLR_TRACE_ARMED(trace_))
        trace_->emit(eq_.now(), TraceComp::L1, TraceEvent::CohDeferDepth,
                     id_, 0, deferredDepth());
    probeHints_.clear();
    yieldArmed_ = false;
    ++yieldGen_;
    array_.forEachValid([](CacheLine &l) { l.pinned = false; });
    for (auto &v : victim_.entries())
        v.pinned = false;
}

//
// ---- queries ------------------------------------------------------------
//

unsigned
L1Controller::outstandingSpecMisses() const
{
    unsigned n = 0;
    for (const auto &[la, m] : mshrs_) {
        (void)la;
        // A queued re-issued op on an orphaned miss is still a real
        // dependency: the transaction cannot finish until it fills.
        if ((m.op && m.op->spec) || (m.queuedOp && m.queuedOp->spec))
            ++n;
    }
    return n;
}

bool
L1Controller::deferredHasEarlierThan(const Timestamp &ts) const
{
    for (const auto &d : deferred_) {
        if (!d.ts.valid)
            continue; // un-timestamped requests have lowest priority
        if (d.ts.earlierThan(ts))
            return true;
    }
    return false;
}

bool
L1Controller::upgradeValid(Addr line) const
{
    const CacheLine *l = findLineConst(line);
    return l && (l->state == CohState::Shared ||
                 l->state == CohState::Owned);
}

bool
L1Controller::linkValid(Addr addr) const
{
    return linkValid_ && linkLine_ == lineAlign(addr);
}

void
L1Controller::markTransactionalRead(Addr addr)
{
    CacheLine *l = findLine(lineAlign(addr));
    if (!l)
        panic("l1 %d: markTransactionalRead on absent line %#llx", id_,
              static_cast<unsigned long long>(addr));
    l->accessRead = true;
}

void
L1Controller::markTransactionalWrite(Addr addr)
{
    CacheLine *l = findLine(lineAlign(addr));
    if (!l || !isWritableState(l->state))
        panic("l1 %d: markTransactionalWrite needs a writable line "
              "%#llx",
              id_, static_cast<unsigned long long>(addr));
    l->accessWrite = true;
}

void
L1Controller::clearLinkIf(Addr line_addr)
{
    if (linkValid_ && linkLine_ == line_addr)
        linkValid_ = false;
}

CohState
L1Controller::lineState(Addr addr) const
{
    const CacheLine *l = findLineConst(lineAlign(addr));
    return l ? l->state : CohState::Invalid;
}

std::string
L1Controller::debugState() const
{
    std::string out;
    for (const auto &[la, m] : mshrs_) {
        out += strfmt("  l1 %d MSHR line=%#llx %s ordered=%d spec=%d "
                      "op=%d queued=%d lose=%d ownPassed=%d marker=%d "
                      "waiters=[",
                      id_, static_cast<unsigned long long>(la),
                      reqTypeName(m.type), m.ordered ? 1 : 0,
                      m.spec ? 1 : 0, m.op ? 1 : 0, m.queuedOp ? 1 : 0,
                      m.loseOnArrival ? 1 : 0, m.ownershipPassed ? 1 : 0,
                      m.markerFrom);
        for (const Waiter &w : m.waiters)
            out += strfmt("%d(%s,%s,def=%d) ", w.cpu,
                          reqTypeName(w.type), w.ts.str().c_str(),
                          w.deferred ? 1 : 0);
        out += "]\n";
    }
    for (const auto &d : deferred_)
        out += strfmt("  l1 %d DEFERRED line=%#llx cpu=%d %s %s\n", id_,
                      static_cast<unsigned long long>(d.line), d.cpu,
                      reqTypeName(d.type), d.ts.str().c_str());
    return out;
}

std::uint64_t
L1Controller::peekWord(Addr addr) const
{
    const CacheLine *l = findLineConst(lineAlign(addr));
    return l ? l->data[wordIndex(addr)] : 0;
}

void
L1Controller::netSubmit(const BusRequest &req)
{
    if (port_)
        port_->submit(req);
    else
        net_.submit(req);
}

void
L1Controller::netSendData(CpuId to, const DataMsg &msg)
{
    if (port_)
        port_->sendData(to, msg);
    else
        net_.sendData(to, msg);
}

void
L1Controller::netSendMarker(CpuId to, const MarkerMsg &msg)
{
    if (port_)
        port_->sendMarker(to, msg);
    else
        net_.sendMarker(to, msg);
}

void
L1Controller::netSendProbe(CpuId to, const ProbeMsg &msg)
{
    if (port_)
        port_->sendProbe(to, msg);
    else
        net_.sendProbe(to, msg);
}

void
L1Controller::memWriteBack(Addr line_addr, const LineData &data)
{
    if (port_)
        port_->writeBack(line_addr, data);
    else
        mem_.writeBack(line_addr, data);
}

} // namespace tlr

/**
 * @file
 * System interconnects.
 *
 * The paper makes no assumption about the coherence organization:
 * "the protocol may be broadcast snooping or directory-based and the
 * interconnect may be ordered or un-ordered" (Section 3). Two
 * implementations of the abstract Interconnect are provided:
 *
 *  - BroadcastInterconnect: an ordered broadcast address network plus
 *    point-to-point data network, modeled on the Sun Gigaplane
 *    split-transaction organization used in the paper (Table 2). Every
 *    controller observes every ordered transaction.
 *
 *  - DirectoryInterconnect (directory.hh): a home directory tracks the
 *    owner and sharer set per line and forwards each request only to
 *    the controllers involved; the directory is the per-line ordering
 *    point. TLR's deferral/marker/probe machinery is identical — only
 *    who observes a request changes.
 *
 * Timing shortcut shared by both: the snoop/forward decision is
 * resolved in one event at the order tick (snoop latency paid up
 * front); data, markers and probes then travel point-to-point with a
 * fixed pipelined latency.
 */

#ifndef TLR_COHERENCE_INTERCONNECT_HH
#define TLR_COHERENCE_INTERCONNECT_HH

#include <deque>
#include <vector>

#include "coherence/messages.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "trace/sink.hh"

namespace tlr
{

class MemoryController;

/** Aggregated snoop result for one ordered transaction. */
struct SnoopReply
{
    bool sharer = false; ///< I held (or keep) a Shared copy
    bool owner = false;  ///< I am (or will be) the data supplier
};

/** Interface every L1 coherence controller implements. */
class Snooper
{
  public:
    virtual ~Snooper() = default;
    virtual CpuId id() const = 0;
    /** Observe an ordered transaction from another processor. */
    virtual SnoopReply snoop(const BusRequest &req) = 0;
    /** Observe the ordering of this processor's own transaction. */
    virtual void ownRequestOrdered(const BusRequest &req, bool any_owner,
                                   bool any_sharer) = 0;

    /** Is this processor's copy of @p line still valid, making a
     *  pending Upgrade effective at its order point? A stale upgrade
     *  (requester invalidated while the request was in flight) must
     *  not invalidate other caches — the requester reissues as GetX. */
    virtual bool upgradeValid(Addr line) const = 0;

    /**
     * Snoop filter hook: does this controller hold ANY state for
     * @p line (valid copy, victim copy, or an outstanding MSHR)?
     * Must be conservative — returning true for a line with no state
     * only costs a wasted snoop, but returning false for a line the
     * controller tracks would skip a required snoop. snoop() on a
     * controller without line state must be a strict no-op, which is
     * what lets the broadcast bus elide the call entirely. Pure:
     * called from serialized ordering contexts while partitions are
     * parked, so it may read cache state directly but not touch it.
     */
    virtual bool holdsLineState(Addr line) const { (void)line; return true; }

    virtual void dataResponse(const DataMsg &msg) = 0;
    virtual void marker(const MarkerMsg &msg) = 0;
    virtual void probe(const ProbeMsg &msg) = 0;
};

struct InterconnectParams
{
    Tick addrOccupancy = 2; ///< cycles between ordered transactions
    Tick snoopLatency = 20; ///< request issue -> global order/snoop
    Tick dataLatency = 20;  ///< point-to-point data network latency
    /** Elide snoops to controllers holding no state for the line
     *  (Snooper::holdsLineState). Exact — a stateless snoop is a
     *  strict no-op — so simulated timing and stats are identical
     *  with it on or off except pkernel.serialSnoops/filteredSnoops. */
    bool snoopFilter = true;
    /** Directory banks (address-interleaved by line). With > 1 bank,
     *  bank-local work (WriteBack entry updates) runs inside the
     *  owning CPU's partition instead of as a serialized global;
     *  1 bank reproduces the unsharded directory exactly. */
    int dirBanks = 1;
};

/**
 * Hook the parallel kernel implements so an interconnect can hand it
 * the events that touch more than one partition (snoop deliveries,
 * directory processing). When no router is attached the interconnect
 * schedules these on its own event queue, exactly as before.
 */
class ParallelRouter
{
  public:
    virtual ~ParallelRouter() = default;
    /** Execute @p fn serialized across partitions at tick @p when. */
    virtual void postGlobal(Tick when, std::function<void()> fn) = 0;
    /**
     * Execute @p fn as an ordinary event of CPU @p cpu's partition at
     * tick @p when (EventPrio::DataResponse). For work that touches
     * state owned by exactly one partition — directory bank updates —
     * so it rides the parallel phase instead of a serialized global.
     * Only call from serialized contexts (ordering machine, globals)
     * with @p when at or past the kernel's committed frontier.
     */
    virtual void postPartition(int cpu, Tick when,
                               std::function<void()> fn) = 0;
    /** Capture sink owned by CPU @p cpu's partition. postPartition
     *  events must emit trace records through this sink — the shared
     *  interconnect sink belongs to serialized contexts and would
     *  race with partition execution. */
    virtual TraceSink *partitionSink(int cpu) = 0;
    /** Simulated time of the in-flight global/barrier context. */
    virtual Tick currentTick() const = 0;
};

/**
 * Abstract interconnect: request ordering is implementation-specific;
 * the point-to-point message plane (data, markers, probes) is shared.
 */
class Interconnect
{
  public:
    Interconnect(EventQueue &eq, StatSet &stats, InterconnectParams params);
    virtual ~Interconnect() = default;

    /** Register controllers (index == CpuId) and the memory. */
    virtual void addSnooper(Snooper *s);
    void setMemory(MemoryController *mem) { mem_ = mem; }
    void setTrace(TraceSink *sink) { trace_ = sink; }
    void setRouter(ParallelRouter *router) { router_ = router; }

    /** Enqueue an address transaction for ordering. */
    virtual void submit(const BusRequest &req) = 0;

    /**
     * Parallel-kernel entry point: apply a submit that happened at
     * @p submit_tick on another partition. Must behave exactly like
     * submit() issued with now() == submit_tick; the kernel replays
     * staged submits in deterministic order at window barriers.
     */
    virtual void submitArrive(const BusRequest &req, Tick submit_tick) = 0;

    /**
     * Conservative notice, in ticks, between a submit and the first
     * ordering-machine event it can create or influence. The kernel
     * may safely run ordering events up to (but excluding)
     * submit-frontier + orderingNotice().
     */
    virtual Tick orderingNotice() const = 0;

    /**
     * Minimum delay between an ordering-machine event and any global
     * it posts via the router. When this is >= the kernel lookahead,
     * ordering events may run after the window they were pending in;
     * otherwise the kernel must bound windows at the next pending
     * ordering event.
     */
    virtual Tick globalPostLag() const = 0;

    /** @{ Point-to-point messages (data network). */
    void sendData(CpuId to, const DataMsg &msg);
    void sendMarker(CpuId to, const MarkerMsg &msg);
    void sendProbe(CpuId to, const ProbeMsg &msg);
    /** @} */

    const InterconnectParams &params() const { return params_; }

  protected:
    /** Tick to stamp trace records with: the router's serialized
     *  execution time when attached, the local queue's otherwise. */
    Tick curTick() const { return router_ ? router_->currentTick()
                                          : eq_.now(); }

    EventQueue &eq_;
    StatSet &stats_;
    InterconnectParams params_;
    MemoryController *mem_ = nullptr;
    TraceSink *trace_ = nullptr;
    ParallelRouter *router_ = nullptr;
    std::vector<Snooper *> snoopers_;
    std::uint64_t nextSn_ = 1;

    std::uint64_t &txnCount_;
    std::uint64_t &dataMsgs_;
    std::uint64_t &markerMsgs_;
    std::uint64_t &probeMsgs_;
    /** @{ serialized-phase work attribution ("pkernel" group):
     *  controller operations (snoops, own-request callbacks, memory
     *  supplies) executed inside ordered deliveries — the work that
     *  runs serialized under the parallel kernel — plus snoops the
     *  filter elided. Counted identically in classic mode so stats
     *  stay mode-independent. */
    std::uint64_t &serialOps_;
    std::uint64_t &serialSnoops_;
    std::uint64_t &filteredSnoops_;
    /** @} */
};

/** The paper's configuration: Gigaplane-style ordered broadcast. */
class BroadcastInterconnect : public Interconnect
{
  public:
    using Interconnect::Interconnect;

    void addSnooper(Snooper *s) override;
    void submit(const BusRequest &req) override;
    void submitArrive(const BusRequest &req, Tick submit_tick) override;
    /** A submit's first effect is arbitration one tick later. */
    Tick orderingNotice() const override { return 1; }
    /** Arbitration posts snoop deliveries snoopLatency ticks out. */
    Tick globalPostLag() const override { return params_.snoopLatency; }

  private:
    void arbitrate();
    void deliver(BusRequest req);

    std::vector<std::deque<BusRequest>> queues_;
    size_t rrNext_ = 0;
    bool arbScheduled_ = false;
};

} // namespace tlr

#endif // TLR_COHERENCE_INTERCONNECT_HH

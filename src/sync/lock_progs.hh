/**
 * @file
 * Lock algorithms written in the mini-ISA.
 *
 * The BASE/SLE/TLR schemes all run the same test&test&set binary
 * (paper Section 5): the acquire is a spin-read followed by an LL/SC
 * attempt, the release a plain store of the free value. SLE elides
 * exactly this dynamic store pattern; no annotation is involved.
 *
 * The MCS scheme uses Mellor-Crummey & Scott queue locks built from
 * the same LL/SC primitives, matching the paper's software baseline.
 */

#ifndef TLR_SYNC_LOCK_PROGS_HH
#define TLR_SYNC_LOCK_PROGS_HH

#include "cpu/program.hh"
#include "sim/types.hh"

namespace tlr
{

/** Which lock code the workload generators should emit. */
enum class LockKind
{
    TestAndTestAndSet,
    Mcs,
};

/** MCS queue node field offsets (one node per thread per lock). */
constexpr std::int64_t mcsNextOff = 0;
constexpr std::int64_t mcsLockedOff = 8;
/** Bytes needed for one MCS queue node (line-padded). */
constexpr std::uint64_t mcsNodeBytes = lineBytes;

/**
 * Emit a test&test&set acquire. @p lock_reg holds the lock address.
 * Clobbers @p t0 and @p t1.
 */
void emitTtsAcquire(ProgramBuilder &b, Reg lock_reg, Reg t0, Reg t1);

/** Emit a test&test&set release (store of the free value). */
void emitTtsRelease(ProgramBuilder &b, Reg lock_reg);

/**
 * Emit an MCS acquire. @p lock_reg holds the tail-pointer address,
 * @p qnode_reg the address of this thread's queue node. Clobbers
 * @p t0..@p t2.
 */
void emitMcsAcquire(ProgramBuilder &b, Reg lock_reg, Reg qnode_reg, Reg t0,
                    Reg t1, Reg t2);

/** Emit an MCS release. Clobbers @p t0 and @p t1. */
void emitMcsRelease(ProgramBuilder &b, Reg lock_reg, Reg qnode_reg, Reg t0,
                    Reg t1);

/**
 * Emit an acquire/release of either kind. For MCS, @p qnode_reg must
 * hold this thread's queue-node address for that lock.
 */
void emitAcquire(ProgramBuilder &b, LockKind kind, Reg lock_reg,
                 Reg qnode_reg, Reg t0, Reg t1, Reg t2);
void emitRelease(ProgramBuilder &b, LockKind kind, Reg lock_reg,
                 Reg qnode_reg, Reg t0, Reg t1);

} // namespace tlr

#endif // TLR_SYNC_LOCK_PROGS_HH

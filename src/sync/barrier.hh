/**
 * @file
 * Sense-reversing centralized barrier in the mini-ISA.
 *
 * The paper's applications use barriers alongside locks; this module
 * provides the standard sense-reversing barrier two ways:
 *
 *  - emitBarrierAmo: the arrival counter is a single AMOADD, which the
 *    speculation engine never elides (atomics are synchronization, not
 *    the silent store-pair idiom) — the recommended form.
 *  - emitBarrierLlSc: a legacy LL/SC increment loop. The SC *matches*
 *    the silent store-pair idiom, so SLE/TLR initially elide it and
 *    speculate into the sense spin-wait, a region that can never
 *    commit; the engine's non-committing-region retry cap then forces
 *    real execution. Correct, but a stress test for the fallback path
 *    (SpecConfig::tlrMaxRetries).
 *
 * Layout: the counter and the sense flag live on separate cache lines
 * so arrival traffic does not invalidate the spinners.
 */

#ifndef TLR_SYNC_BARRIER_HH
#define TLR_SYNC_BARRIER_HH

#include "cpu/program.hh"
#include "sim/types.hh"

namespace tlr
{

/**
 * Emit a sense-reversing barrier using AMOADD.
 * @param count_reg register holding the arrival-counter address
 * @param sense_reg register holding the global-sense address
 * @param local_sense_reg persistent register holding this thread's
 *        sense (initialize to 0 before the first barrier)
 * @param nthreads participant count
 * Clobbers @p t0 and @p t1.
 */
void emitBarrierAmo(ProgramBuilder &b, Reg count_reg, Reg sense_reg,
                    Reg local_sense_reg, int nthreads, Reg t0, Reg t1);

/** Same barrier built from an LL/SC increment loop. */
void emitBarrierLlSc(ProgramBuilder &b, Reg count_reg, Reg sense_reg,
                     Reg local_sense_reg, int nthreads, Reg t0, Reg t1);

} // namespace tlr

#endif // TLR_SYNC_BARRIER_HH

/**
 * @file
 * Address-space layout helper for workloads.
 *
 * Bump allocator over the simulated physical address space with
 * line-granularity padding (the paper pads shared structures to
 * eliminate false sharing, Section 5.2), plus a registry of lock
 * addresses used for the execution-time breakdown of Figure 11.
 */

#ifndef TLR_SYNC_LAYOUT_HH
#define TLR_SYNC_LAYOUT_HH

#include <functional>
#include <unordered_set>

#include "sim/types.hh"

namespace tlr
{

class Layout
{
  public:
    explicit Layout(Addr base = 0x10000) : next_(base) {}

    /** Allocate @p bytes with @p align alignment (default one word). */
    Addr alloc(std::uint64_t bytes, std::uint64_t align = 8);

    /** Allocate a whole cache line (avoids false sharing). */
    Addr allocLine();

    /** Allocate @p lines consecutive cache lines. */
    Addr allocLines(unsigned lines);

    /** Allocate a line-padded lock word and register it. */
    Addr allocLock();

    /** Register an additional synchronization word (e.g., MCS queue
     *  node flags) so its stall time counts as lock overhead. */
    void registerSyncAddr(Addr addr);

    bool isLockAddr(Addr addr) const
    {
        return lockLines_.count(lineAlign(addr)) != 0;
    }

    /** Classifier suitable for Core::setLockClassifier. */
    std::function<bool(Addr)> classifier() const;

  private:
    Addr next_;
    std::unordered_set<Addr> lockLines_;
};

} // namespace tlr

#endif // TLR_SYNC_LAYOUT_HH

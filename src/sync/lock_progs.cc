#include "sync/lock_progs.hh"

namespace tlr
{

void
emitTtsAcquire(ProgramBuilder &b, Reg lock_reg, Reg t0, Reg t1)
{
    const std::string spin = b.uniqueLabel("tts_spin");
    const std::string done = b.uniqueLabel("tts_done");
    b.label(spin);
    b.ld(t0, lock_reg);          // test: spin on a cached copy
    b.bne(t0, 0, spin);
    b.ll(t0, lock_reg);          // test&set attempt via LL/SC
    b.bne(t0, 0, spin);
    b.li(t1, 1);
    b.sc(t0, t1, lock_reg);      // the elidable store (SLE idiom)
    b.bne(t0, 0, done);
    // SC failed: short random backoff. Real LL/SC hardware guarantees
    // eventual SC success with link hold windows; our protocol model
    // has none, so symmetric contenders could otherwise invalidate
    // each other's links forever. The backoff only runs on failure,
    // leaving the uncontended path untouched.
    b.li(t1, 32);
    b.rnd(t0, t1);
    b.delay(t0);
    b.jmp(spin);
    b.label(done);
}

void
emitTtsRelease(ProgramBuilder &b, Reg lock_reg)
{
    b.st(0, lock_reg);           // restore the free value (silent pair)
}

void
emitMcsAcquire(ProgramBuilder &b, Reg lock_reg, Reg qnode_reg, Reg t0,
               Reg t1, Reg t2)
{
    const std::string wait = b.uniqueLabel("mcs_wait");
    const std::string done = b.uniqueLabel("mcs_done");

    (void)t1;
    b.st(0, qnode_reg, mcsNextOff);       // qnode->next = NULL
    b.amoswap(t0, qnode_reg, lock_reg);   // pred = SWAP(tail, qnode)
    b.beq(t0, 0, done);                   // no predecessor: lock is ours
    b.li(t2, 1);
    b.st(t2, qnode_reg, mcsLockedOff);    // qnode->locked = 1
    b.st(qnode_reg, t0, mcsNextOff);      // pred->next = qnode
    b.label(wait);
    b.ld(t2, qnode_reg, mcsLockedOff);    // spin on own node (local)
    b.bne(t2, 0, wait);
    b.label(done);
}

void
emitMcsRelease(ProgramBuilder &b, Reg lock_reg, Reg qnode_reg, Reg t0,
               Reg t1)
{
    const std::string waitSucc = b.uniqueLabel("mcs_waitsucc");
    const std::string notify = b.uniqueLabel("mcs_notify");
    const std::string done = b.uniqueLabel("mcs_rel_done");

    b.ld(t0, qnode_reg, mcsNextOff);
    b.bne(t0, 0, notify);                 // successor already linked
    b.mov(t1, qnode_reg);                 // expected value for the CAS
    b.amocas(t1, 0, lock_reg);            // CAS(tail, qnode, NULL)
    b.beq(t1, qnode_reg, done);           // succeeded: queue empty again
    b.label(waitSucc);                    // tail moved: successor coming
    b.ld(t0, qnode_reg, mcsNextOff);
    b.beq(t0, 0, waitSucc);
    b.label(notify);
    b.ld(t0, qnode_reg, mcsNextOff);
    b.st(0, t0, mcsLockedOff);            // successor->locked = 0
    b.label(done);
}

void
emitAcquire(ProgramBuilder &b, LockKind kind, Reg lock_reg, Reg qnode_reg,
            Reg t0, Reg t1, Reg t2)
{
    if (kind == LockKind::TestAndTestAndSet)
        emitTtsAcquire(b, lock_reg, t0, t1);
    else
        emitMcsAcquire(b, lock_reg, qnode_reg, t0, t1, t2);
}

void
emitRelease(ProgramBuilder &b, LockKind kind, Reg lock_reg, Reg qnode_reg,
            Reg t0, Reg t1)
{
    if (kind == LockKind::TestAndTestAndSet) {
        (void)qnode_reg;
        (void)t0;
        (void)t1;
        emitTtsRelease(b, lock_reg);
    } else {
        emitMcsRelease(b, lock_reg, qnode_reg, t0, t1);
    }
}

} // namespace tlr

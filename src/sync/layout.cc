#include "sync/layout.hh"

#include "sim/logging.hh"

namespace tlr
{

Addr
Layout::alloc(std::uint64_t bytes, std::uint64_t align)
{
    if (align == 0 || (align & (align - 1)))
        fatal("alignment must be a power of two");
    next_ = (next_ + align - 1) & ~(align - 1);
    Addr a = next_;
    next_ += bytes;
    return a;
}

Addr
Layout::allocLine()
{
    return alloc(lineBytes, lineBytes);
}

Addr
Layout::allocLines(unsigned lines)
{
    return alloc(static_cast<std::uint64_t>(lines) * lineBytes, lineBytes);
}

Addr
Layout::allocLock()
{
    Addr a = allocLine();
    lockLines_.insert(lineAlign(a));
    return a;
}

void
Layout::registerSyncAddr(Addr addr)
{
    lockLines_.insert(lineAlign(addr));
}

std::function<bool(Addr)>
Layout::classifier() const
{
    auto lines = lockLines_; // copy: layout may outlive or not
    return [lines](Addr a) { return lines.count(lineAlign(a)) != 0; };
}

} // namespace tlr

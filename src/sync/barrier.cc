#include "sync/barrier.hh"

namespace tlr
{

namespace
{

/** Common tail: last arrival resets the counter and flips the global
 *  sense; everyone else spins until the sense matches theirs. @p t0
 *  holds the pre-increment counter value on entry. */
void
emitBarrierTail(ProgramBuilder &b, Reg count_reg, Reg sense_reg,
                Reg local_sense_reg, int nthreads, Reg t0, Reg t1)
{
    const std::string spin = b.uniqueLabel("bar_spin");
    const std::string done = b.uniqueLabel("bar_done");
    b.li(t1, nthreads - 1);
    b.bne(t0, t1, spin);                 // not the last arrival
    b.st(0, count_reg);                  // reset for the next episode
    b.st(local_sense_reg, sense_reg);    // release everyone
    b.jmp(done);
    b.label(spin);
    b.ld(t1, sense_reg);
    b.bne(t1, local_sense_reg, spin);
    b.label(done);
}

} // namespace

void
emitBarrierAmo(ProgramBuilder &b, Reg count_reg, Reg sense_reg,
               Reg local_sense_reg, int nthreads, Reg t0, Reg t1)
{
    // local_sense = 1 - local_sense
    b.li(t0, 1);
    b.sub(local_sense_reg, t0, local_sense_reg);
    // t0 = fetch_and_add(count, 1)
    b.li(t1, 1);
    b.amoadd(t0, t1, count_reg);
    emitBarrierTail(b, count_reg, sense_reg, local_sense_reg, nthreads,
                    t0, t1);
}

void
emitBarrierLlSc(ProgramBuilder &b, Reg count_reg, Reg sense_reg,
                Reg local_sense_reg, int nthreads, Reg t0, Reg t1)
{
    const std::string retry = b.uniqueLabel("bar_retry");
    b.li(t0, 1);
    b.sub(local_sense_reg, t0, local_sense_reg);
    b.label(retry);
    b.ll(t0, count_reg);
    b.addi(t1, t0, 1);
    b.sc(t1, t1, count_reg); // the idiom SLE will (wrongly) elide
    b.beq(t1, 0, retry);
    emitBarrierTail(b, count_reg, sense_reg, local_sense_reg, nthreads,
                    t0, t1);
}

} // namespace tlr
